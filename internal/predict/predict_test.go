package predict

import (
	"testing"
	"testing/quick"
)

// --- line predictor ---

func TestLinePredictorLearnsTransitions(t *testing.T) {
	lp := NewLinePredictor(10)
	if _, ok := lp.Predict(0x100); ok {
		t.Error("untrained predictor predicted")
	}
	lp.Train(0x100, 0x200)
	got, ok := lp.Predict(0x100)
	if !ok || got != 0x200 {
		t.Errorf("predict = %#x, %v", got, ok)
	}
	lp.Train(0x100, 0x300) // retrain
	if got, _ := lp.Predict(0x100); got != 0x300 {
		t.Errorf("retrained predict = %#x", got)
	}
}

func TestLinePredictorAliasing(t *testing.T) {
	// Different PCs can alias to the same entry — the small-table effect
	// that defeats sharing one line predictor between redundant threads.
	lp := NewLinePredictor(2) // 4 entries
	for pc := uint64(0); pc < 64; pc += 8 {
		lp.Train(pc, pc+8)
	}
	wrong := 0
	for pc := uint64(0); pc < 64; pc += 8 {
		if got, ok := lp.Predict(pc); !ok || got != pc+8 {
			wrong++
		}
	}
	if wrong == 0 {
		t.Error("no aliasing in a 4-entry table trained with 8 streams")
	}
}

// --- branch predictor ---

func TestBranchPredictorLearnsBias(t *testing.T) {
	bp := NewBranchPredictor(12)
	pc := uint64(0x400)
	for i := 0; i < 8; i++ {
		bp.Train(pc, 0, true)
	}
	if !bp.Predict(pc, 0) {
		t.Error("always-taken branch predicted not-taken")
	}
	for i := 0; i < 8; i++ {
		bp.Train(pc, 0, false)
	}
	if bp.Predict(pc, 0) {
		t.Error("retrained always-not-taken branch predicted taken")
	}
}

func TestBranchPredictorLearnsPattern(t *testing.T) {
	// gshare should learn a short alternating pattern through history.
	bp := NewBranchPredictor(12)
	pc := uint64(0x800)
	taken := false
	for i := 0; i < 4000; i++ {
		bp.Train(pc, 0, taken)
		taken = !taken
	}
	correct := 0
	for i := 0; i < 100; i++ {
		if bp.Predict(pc, 0) == taken {
			correct++
		}
		bp.Train(pc, 0, taken)
		taken = !taken
	}
	if correct < 95 {
		t.Errorf("alternating pattern: %d/100 correct; hybrid should learn it", correct)
	}
}

func TestBranchPredictorPerThreadHistory(t *testing.T) {
	bp := NewBranchPredictor(12)
	// Train thread 0 heavily on one pattern; thread 1's history must be
	// separate (its gshare index differs).
	pc := uint64(0x900)
	for i := 0; i < 64; i++ {
		bp.Train(pc, 0, true)
	}
	if bp.history[0] == bp.history[1] {
		t.Error("thread histories not separated")
	}
}

// --- RAS ---

func TestRASLIFO(t *testing.T) {
	r := NewRAS(4)
	r.Push(10)
	r.Push(20)
	if v, ok := r.Pop(); !ok || v != 20 {
		t.Errorf("pop = %d, %v", v, ok)
	}
	if v, ok := r.Pop(); !ok || v != 10 {
		t.Errorf("pop = %d, %v", v, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Error("pop of empty stack succeeded")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if v, _ := r.Pop(); v != 3 {
		t.Errorf("pop = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Errorf("pop = %d, want 2", v)
	}
	if _, ok := r.Pop(); ok {
		t.Error("wrapped stack should be empty after two pops")
	}
}

func TestRASQuickBalanced(t *testing.T) {
	// Property: with nesting shallower than the stack, calls and returns
	// match exactly.
	f := func(depths []uint8) bool {
		r := NewRAS(32)
		var model []uint64
		for i, d := range depths {
			if d%2 == 0 && len(model) < 30 {
				addr := uint64(i + 1)
				r.Push(addr)
				model = append(model, addr)
			} else if len(model) > 0 {
				want := model[len(model)-1]
				model = model[:len(model)-1]
				got, ok := r.Pop()
				if !ok || got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// --- jump predictor ---

func TestJumpPredictorLastTarget(t *testing.T) {
	jp := NewJumpPredictor(8)
	pc := uint64(0x123)
	if _, ok := jp.Predict(pc); ok {
		t.Error("untrained prediction")
	}
	jp.Train(pc, 0x500)
	if got, ok := jp.Predict(pc); !ok || got != 0x500 {
		t.Errorf("predict = %#x %v", got, ok)
	}
	jp.Train(pc, 0x600)
	if got, _ := jp.Predict(pc); got != 0x600 {
		t.Errorf("last-target update failed: %#x", got)
	}
}

// --- store sets ---

func TestStoreSetsLearnsDependence(t *testing.T) {
	s := NewStoreSets(10, 16)
	loadPC, storePC := uint64(0x100), uint64(0x200)

	// Before any violation: no dependence.
	if dep := s.DependsOn(storePC, true, 7); dep != 0 {
		t.Errorf("untrained store dep = %d", dep)
	}
	if dep := s.DependsOn(loadPC, false, 0); dep != 0 {
		t.Errorf("untrained load dep = %d", dep)
	}

	s.Violation(loadPC, storePC)

	// Now a fetched store registers in the LFST and the load sees it.
	if dep := s.DependsOn(storePC, true, 42); dep != 0 {
		t.Errorf("store's own dep = %d, want 0 (empty set)", dep)
	}
	if dep := s.DependsOn(loadPC, false, 0); dep != 42 {
		t.Errorf("load dep = %d, want 42", dep)
	}

	// After the store retires, the set empties.
	s.StoreRetired(storePC, 42)
	if dep := s.DependsOn(loadPC, false, 0); dep != 0 {
		t.Errorf("dep after retire = %d", dep)
	}
}

func TestStoreSetsChainStores(t *testing.T) {
	// Two stores in one set chain: the second depends on the first.
	s := NewStoreSets(10, 16)
	s.Violation(0x100, 0x200)
	s.Violation(0x100, 0x300) // merges 0x300 into the set
	if dep := s.DependsOn(0x200, true, 1); dep != 0 {
		t.Errorf("first store dep = %d", dep)
	}
	if dep := s.DependsOn(0x300, true, 2); dep != 1 {
		t.Errorf("second store should chain behind the first, dep = %d", dep)
	}
}

func TestStoreSetsCyclicClearing(t *testing.T) {
	s := NewStoreSets(10, 16)
	s.ClearEvery = 4
	s.Violation(0x100, 0x200)
	s.DependsOn(0x200, true, 9)
	if dep := s.DependsOn(0x100, false, 0); dep != 9 {
		t.Fatalf("dep = %d before clearing", dep)
	}
	// Exceed ClearEvery accesses.
	for i := 0; i < 5; i++ {
		s.DependsOn(0x900, false, 0)
	}
	if dep := s.DependsOn(0x100, false, 0); dep != 0 {
		t.Errorf("dep = %d after cyclic clear, want 0", dep)
	}
	if s.Clears.Value() == 0 {
		t.Error("clears counter not incremented")
	}
}
