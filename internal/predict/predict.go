// Package predict implements the base processor's prediction structures
// (Table 1): the line predictor that drives instruction fetch, a hybrid
// conditional branch predictor, a return address stack, a jump target
// predictor, and a store-sets memory dependence predictor.
//
// Prediction tables are shared between hardware threads (as on the modeled
// machine), so cross-thread aliasing — the reason the paper's shared-line-
// predictor alternative to the line prediction queue performs poorly — is
// captured. Histories are per-thread.
package predict

import "repro/internal/stats"

const numThreads = 8 // max hardware thread contexts the predictors index

// --- Line predictor ---

// LinePredictor predicts the next fetch chunk address from the current one.
// The real EV8 line predictor produces (set, way) icache indices; at the
// model's level of abstraction a chunk-start PC prediction is equivalent:
// what matters is whether the fetch engine follows the correct address
// stream, and the observed misprediction rate (the paper cites 14-28%).
type LinePredictor struct {
	mask    uint64   //rmtsnap:skip — derived from construction-time table size
	table   []uint64 // predicted next chunk-start PC, 0 = no prediction
	Lookups stats.Counter
	Wrong   stats.Counter
}

// NewLinePredictor returns a line predictor with 2^bits entries (the base
// machine's 28K-entry predictor is approximated with 32K entries).
func NewLinePredictor(bits uint) *LinePredictor {
	return &LinePredictor{
		mask:  (1 << bits) - 1,
		table: make([]uint64, 1<<bits),
	}
}

func (l *LinePredictor) idx(pc uint64) uint64 {
	// Chunk-granular index; mix in higher bits to spread programs whose
	// address-space tags sit above bit 40.
	c := pc >> 3
	return (c ^ c>>13 ^ c>>27) & l.mask
}

// Predict returns the predicted next chunk-start PC after the chunk at pc,
// and whether the predictor had any prediction at all.
func (l *LinePredictor) Predict(pc uint64) (uint64, bool) {
	l.Lookups.Inc()
	v := l.table[l.idx(pc)]
	return v, v != 0
}

// Train records the observed next chunk-start PC for the chunk at pc.
func (l *LinePredictor) Train(pc, next uint64) {
	l.table[l.idx(pc)] = next
}

// --- Branch predictor ---

// BranchPredictor is a hybrid (tournament) predictor: a bimodal table and a
// gshare table with a chooser, sized to the order of the base machine's
// 208 Kbit budget. Global history is per hardware thread.
type BranchPredictor struct {
	mask    uint64  //rmtsnap:skip — derived from construction-time table size
	bimodal []uint8 // 2-bit counters
	gshare  []uint8
	choice  []uint8 // 2-bit: >=2 selects gshare
	history [numThreads]uint64

	Lookups stats.Counter
	Wrong   stats.Counter
}

// NewBranchPredictor returns a predictor with three 2^bits-entry 2-bit
// tables (bits=15 gives 3*32K*2 = 192 Kbit, matching Table 1's budget).
func NewBranchPredictor(bits uint) *BranchPredictor {
	n := 1 << bits
	bp := &BranchPredictor{
		mask:    uint64(n - 1),
		bimodal: make([]uint8, n),
		gshare:  make([]uint8, n),
		choice:  make([]uint8, n),
	}
	for i := range bp.bimodal {
		bp.bimodal[i] = 1 // weakly not-taken
		bp.gshare[i] = 1
		bp.choice[i] = 1
	}
	return bp
}

func (b *BranchPredictor) bidx(pc uint64) uint64 { return (pc ^ pc>>16) & b.mask }
func (b *BranchPredictor) gidx(pc uint64, tid int) uint64 {
	return (pc ^ b.history[tid]) & b.mask
}

// Predict returns the predicted direction for the conditional branch at pc
// on thread tid.
func (b *BranchPredictor) Predict(pc uint64, tid int) bool {
	b.Lookups.Inc()
	if b.choice[b.bidx(pc)] >= 2 {
		return b.gshare[b.gidx(pc, tid)] >= 2
	}
	return b.bimodal[b.bidx(pc)] >= 2
}

func bump(c *uint8, up bool) {
	if up {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// Train updates tables and the thread's global history with the actual
// direction.
func (b *BranchPredictor) Train(pc uint64, tid int, taken bool) {
	bi, gi := b.bidx(pc), b.gidx(pc, tid)
	bimodalRight := (b.bimodal[bi] >= 2) == taken
	gshareRight := (b.gshare[gi] >= 2) == taken
	if bimodalRight != gshareRight {
		bump(&b.choice[bi], gshareRight)
	}
	bump(&b.bimodal[bi], taken)
	bump(&b.gshare[gi], taken)
	b.history[tid] = b.history[tid]<<1 | boolU64(taken)
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// --- Return address stack ---

// RAS is a per-thread return address stack with wrap-around overflow, as in
// real fetch engines.
type RAS struct {
	stack []uint64
	top   int
	depth int
}

// NewRAS returns a stack with the given depth.
func NewRAS(depth int) *RAS {
	return &RAS{stack: make([]uint64, depth)}
}

// Push records a call's return address.
func (r *RAS) Push(addr uint64) {
	r.stack[r.top] = addr
	r.top = (r.top + 1) % len(r.stack)
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts a return target; ok is false when the stack is empty.
func (r *RAS) Pop() (uint64, bool) {
	if r.depth == 0 {
		return 0, false
	}
	r.depth--
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	return r.stack[r.top], true
}

// --- Jump target predictor ---

// JumpPredictor predicts indirect-jump targets (non-return JMPs: switch
// tables, dispatch loops) with a last-target table.
type JumpPredictor struct {
	mask  uint64 //rmtsnap:skip — derived from construction-time table size
	table []uint64

	Lookups stats.Counter
	Wrong   stats.Counter
}

// NewJumpPredictor returns a 2^bits-entry last-target predictor.
func NewJumpPredictor(bits uint) *JumpPredictor {
	return &JumpPredictor{mask: (1 << bits) - 1, table: make([]uint64, 1<<bits)}
}

func (j *JumpPredictor) idx(pc uint64) uint64 { return (pc ^ pc>>11) & j.mask }

// Predict returns the predicted target, ok=false if never seen.
func (j *JumpPredictor) Predict(pc uint64) (uint64, bool) {
	j.Lookups.Inc()
	t := j.table[j.idx(pc)]
	return t, t != 0
}

// Train records the actual target.
func (j *JumpPredictor) Train(pc, target uint64) { j.table[j.idx(pc)] = target }

// --- Store sets memory dependence predictor ---

// StoreSets implements the Chrysos/Emer store-sets predictor (SSIT + LFST)
// from Table 1: loads that have previously conflicted with a store are
// placed in that store's set and made to wait for it.
type StoreSets struct {
	ssitMask uint64   //rmtsnap:skip — derived from construction-time table size
	ssit     []int32  // PC -> store set ID, -1 = none
	lfst     []uint64 // store set ID -> tag of last fetched store in set (0 = none)

	// ClearEvery implements the Chrysos/Emer cyclic clearing: after this
	// many accesses all set assignments are forgotten, so a rare collision
	// does not serialise a static load/store pair forever.
	ClearEvery uint64 //rmtsnap:skip — construction-time config
	accesses   uint64

	Assignments stats.Counter
	Violations  stats.Counter
	Clears      stats.Counter
}

// NewStoreSets returns a predictor with 2^bits SSIT entries and maxSets
// store sets (Table 1: 4K entries).
func NewStoreSets(bits uint, maxSets int) *StoreSets {
	s := &StoreSets{
		ssitMask:   (1 << bits) - 1,
		ssit:       make([]int32, 1<<bits),
		lfst:       make([]uint64, maxSets),
		ClearEvery: 30000,
	}
	s.clear()
	return s
}

func (s *StoreSets) clear() {
	for i := range s.ssit {
		s.ssit[i] = -1
	}
	for i := range s.lfst {
		s.lfst[i] = 0
	}
}

func (s *StoreSets) idx(pc uint64) uint64 { return (pc ^ pc>>9) & s.ssitMask }

// DependsOn returns the tag of the store instruction the memory op at pc
// should wait for (0 = issue freely). Stores update the LFST with their own
// tag so younger set members chain behind them.
func (s *StoreSets) DependsOn(pc uint64, isStore bool, tag uint64) uint64 {
	s.accesses++
	if s.ClearEvery > 0 && s.accesses >= s.ClearEvery {
		s.accesses = 0
		s.Clears.Inc()
		s.clear()
	}
	set := s.ssit[s.idx(pc)]
	if set < 0 {
		return 0
	}
	dep := s.lfst[set]
	if isStore {
		s.lfst[set] = tag
	}
	return dep
}

// StoreRetired clears the LFST entry if it still names tag.
func (s *StoreSets) StoreRetired(pc uint64, tag uint64) {
	set := s.ssit[s.idx(pc)]
	if set >= 0 && s.lfst[set] == tag {
		s.lfst[set] = 0
	}
}

// Violation records that the load at loadPC conflicted with the store at
// storePC: both are assigned to a common store set.
func (s *StoreSets) Violation(loadPC, storePC uint64) {
	s.Violations.Inc()
	li, si := s.idx(loadPC), s.idx(storePC)
	ls, ss := s.ssit[li], s.ssit[si]
	switch {
	case ls < 0 && ss < 0:
		set := int32(si % uint64(len(s.lfst)))
		s.ssit[li], s.ssit[si] = set, set
		s.Assignments.Inc()
	case ls < 0:
		s.ssit[li] = ss
	case ss < 0:
		s.ssit[si] = ls
	default:
		// Merge: the lower-numbered set wins (declining-set rule).
		if ls < ss {
			s.ssit[si] = ls
		} else {
			s.ssit[li] = ss
		}
	}
}
