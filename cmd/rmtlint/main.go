// Command rmtlint is the repo's two-layer static checker, the engine behind
// `make lint`.
//
// Layer 1 runs the Go analyzers from internal/analysis (determinism,
// layering, sharedstate, snapshot, snapcomplete) over the module's packages,
// then reports stale suppression directives — //rmtlint:allow or
// //rmtsnap:skip comments that no longer suppress anything. Layer 2 runs the
// ISA program verifier over every registered workload kernel, so a kernel
// that regresses structurally (orphaned block, never-written register read,
// wild immediate) fails the build rather than the experiment.
//
// Usage:
//
//	rmtlint ./...            # whole module + every kernel
//	rmtlint ./internal/sim   # selected packages (kernels still checked)
//	rmtlint -nokernels ./... # Layer 1 only
//	rmtlint -nostale ./...   # keep stale directives quiet
//	rmtlint -json ./...      # findings as a JSON array on stdout
//
// Exit status is 0 when nothing is flagged, 1 otherwise; diagnostics are
// file:line: [check] message, or with -json a machine-readable array of
// {file,line,col,analyzer,message} objects (kernel findings carry
// {kernel,pc,analyzer,message} instead of a source position). A finding that
// is legitimate by design is suppressed at the site with a
// //rmtlint:allow <check> or //rmtsnap:skip directive.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis" //rmtlint:allow layering — the linter drives the analysis engine directly
	"repro/rmt"
)

// finding is the JSON shape of one diagnostic. Source findings fill
// file/line/col; kernel findings fill kernel and (when anchored) pc.
type finding struct {
	File     string `json:"file,omitempty"`
	Line     int    `json:"line,omitempty"`
	Col      int    `json:"col,omitempty"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Kernel   string `json:"kernel,omitempty"`
	PC       *int   `json:"pc,omitempty"`
}

func sourceFinding(d analysis.Diagnostic) finding {
	return finding{
		File:     d.Pos.Filename,
		Line:     d.Pos.Line,
		Col:      d.Pos.Column,
		Analyzer: d.Check,
		Message:  d.Message,
	}
}

func kernelFinding(name string, issue rmt.ProgramIssue) finding {
	f := finding{Kernel: name, Analyzer: issue.Check, Message: issue.Msg}
	if issue.PC >= 0 {
		pc := issue.PC
		f.PC = &pc
	}
	return f
}

// writeJSON emits the findings as one indented JSON array (an empty slice
// marshals as [], so a clean run still produces valid JSON).
func writeJSON(w io.Writer, findings []finding) error {
	if findings == nil {
		findings = []finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

func main() {
	nokernels := flag.Bool("nokernels", false, "skip the Layer-2 kernel verification")
	nostale := flag.Bool("nostale", false, "do not report stale suppression directives")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, modPath, err := analysis.ModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	loader := analysis.NewLoader(root, modPath)

	var paths []string
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			all, err := loader.Packages()
			if err != nil {
				fatal(err)
			}
			paths = append(paths, all...)
		default:
			path, err := loader.PathOf(strings.TrimSuffix(arg, "/"))
			if err != nil {
				fatal(err)
			}
			paths = append(paths, path)
		}
	}

	var findings []finding
	for _, path := range paths {
		pass, err := loader.Load(path)
		if err != nil {
			fatal(err)
		}
		diags := analysis.RunAnalyzers(pass, analysis.Analyzers())
		if !*nostale {
			// Valid only now: every analyzer that could consume a directive
			// has run over this package.
			diags = append(diags, pass.StaleDirectives()...)
		}
		for _, d := range diags {
			findings = append(findings, sourceFinding(d))
		}
	}

	if !*nokernels {
		for _, name := range rmt.Kernels() {
			issues, err := rmt.CheckKernel(name)
			if err != nil {
				fatal(err)
			}
			for _, issue := range issues {
				findings = append(findings, kernelFinding(name, issue))
			}
		}
	}

	if *jsonOut {
		if err := writeJSON(os.Stdout, findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			if f.Kernel != "" {
				if f.PC != nil {
					fmt.Printf("kernel %s: [%s] pc=%d: %s\n", f.Kernel, f.Analyzer, *f.PC, f.Message)
				} else {
					fmt.Printf("kernel %s: [%s] %s\n", f.Kernel, f.Analyzer, f.Message)
				}
			} else {
				fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
			}
		}
	}

	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "rmtlint: %d issue(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmtlint:", err)
	os.Exit(2)
}
