// Command rmtlint is the repo's two-layer static checker, the engine behind
// `make lint`.
//
// Layer 1 runs the Go analyzers from internal/analysis (determinism,
// layering, sharedstate) over the module's packages. Layer 2 runs the ISA
// program verifier over every registered workload kernel, so a kernel that
// regresses structurally (orphaned block, never-written register read,
// wild immediate) fails the build rather than the experiment.
//
// Usage:
//
//	rmtlint ./...            # whole module + every kernel
//	rmtlint ./internal/sim   # selected packages (kernels still checked)
//	rmtlint -nokernels ./... # Layer 1 only
//
// Exit status is 0 when nothing is flagged, 1 otherwise; diagnostics are
// file:line: [check] message. A finding that is legitimate by design is
// suppressed at the site with a //rmtlint:allow <check> directive.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis" //rmtlint:allow layering — the linter drives the analysis engine directly
	"repro/rmt"
)

func main() {
	nokernels := flag.Bool("nokernels", false, "skip the Layer-2 kernel verification")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, modPath, err := analysis.ModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	loader := analysis.NewLoader(root, modPath)

	var paths []string
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			all, err := loader.Packages()
			if err != nil {
				fatal(err)
			}
			paths = append(paths, all...)
		default:
			path, err := loader.PathOf(strings.TrimSuffix(arg, "/"))
			if err != nil {
				fatal(err)
			}
			paths = append(paths, path)
		}
	}

	bad := 0
	for _, path := range paths {
		pass, err := loader.Load(path)
		if err != nil {
			fatal(err)
		}
		for _, d := range analysis.RunAnalyzers(pass, analysis.Analyzers()) {
			fmt.Println(d)
			bad++
		}
	}

	if !*nokernels {
		for _, name := range rmt.Kernels() {
			issues, err := rmt.CheckKernel(name)
			if err != nil {
				fatal(err)
			}
			for _, issue := range issues {
				fmt.Printf("kernel %s: %s\n", name, issue)
				bad++
			}
		}
	}

	if bad > 0 {
		fmt.Fprintf(os.Stderr, "rmtlint: %d issue(s)\n", bad)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmtlint:", err)
	os.Exit(2)
}
