package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/rmt"
)

// TestJSONSchema pins the machine-readable finding shape: source findings
// carry file/line/col, kernel findings carry kernel (and pc when anchored),
// and both always carry analyzer and message.
func TestJSONSchema(t *testing.T) {
	src := sourceFinding(analysis.Diagnostic{
		Pos:     token.Position{Filename: "internal/sim/machine.go", Line: 42, Column: 7},
		Check:   "determinism",
		Message: "time.Now on the canonical path",
	})
	kern := kernelFinding("gcc", rmt.ProgramIssue{Check: "reach", PC: 9, Msg: "unreachable block"})
	wide := kernelFinding("li", rmt.ProgramIssue{Check: "halt", PC: -1, Msg: "no halt on some path"})

	var buf bytes.Buffer
	if err := writeJSON(&buf, []finding{src, kern, wide}); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.Bytes())
	}
	if len(got) != 3 {
		t.Fatalf("want 3 findings, got %d", len(got))
	}

	want := []map[string]any{
		{"file": "internal/sim/machine.go", "line": 42.0, "col": 7.0,
			"analyzer": "determinism", "message": "time.Now on the canonical path"},
		{"kernel": "gcc", "pc": 9.0, "analyzer": "reach", "message": "unreachable block"},
		{"kernel": "li", "analyzer": "halt", "message": "no halt on some path"},
	}
	for i := range want {
		for k, v := range want[i] {
			if got[i][k] != v {
				t.Errorf("finding %d: %s = %v, want %v", i, k, got[i][k], v)
			}
		}
		for k := range got[i] {
			if _, ok := want[i][k]; !ok {
				t.Errorf("finding %d: unexpected key %q (zero-valued fields must be omitted)", i, k)
			}
		}
	}
}

// TestJSONEmpty: a clean run still emits valid JSON — an empty array, not
// null, so downstream `jq length` pipelines work unconditionally.
func TestJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Fatalf("empty findings encode as %q, want []", got)
	}
}
