// Command rmtasm inspects workload kernels: disassembly listings, static
// statistics, binary encodings, and a dynamic opcode/character profile from
// functional execution. Several kernels can be inspected at once; their
// profiles are independent functional runs, so -parallel fans them across
// workers while the listing order stays fixed.
//
// -check runs the static program verifier (the Layer-2 half of rmtlint)
// over every selected program before anything is emitted: a malformed
// program is rejected with pc-level diagnostics on stderr and no output is
// written. -o serialises a single program to a binary image; -bin loads an
// image in place of the registered kernels, so images round-trip through
// the same listing, profiling and verification paths:
//
//	rmtasm -progs gcc                   # disassembly + static stats
//	rmtasm -progs swim,li -profile      # add dynamic profiles (-budget instructions)
//	rmtasm -progs li -hex               # include binary encodings
//	rmtasm -progs gcc -check -o gcc.img # verify, then write a binary image
//	rmtasm -bin gcc.img -check          # reload and re-verify the image
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis" //rmtlint:allow layering — runs the program verifier standalone, pc-level issue access
	"repro/internal/cliflags"
	"repro/internal/isa"     //rmtlint:allow layering — assembler/disassembler tool works on raw instructions
	"repro/internal/program" //rmtlint:allow layering — lists and builds the kernel registry directly
	"repro/internal/runner"  //rmtlint:allow layering — fans dynamic profiles across workers
	"repro/internal/vm"      //rmtlint:allow layering — functional execution for dynamic profiles
)

// profileData is one kernel's dynamic profile.
type profileData struct {
	n                         uint64
	counts                    map[string]uint64
	loads, stores, brs, taken uint64
}

func main() {
	var (
		progsFlag = flag.String("progs", "gcc", "comma-separated kernels to inspect")
		profile   = flag.Bool("profile", false, "run a dynamic profile per kernel (-budget instructions after -warmup)")
		hex       = flag.Bool("hex", false, "include binary encodings")
		check     = flag.Bool("check", false, "statically verify each program; reject malformed ones before writing any output")
		binFile   = flag.String("bin", "", "inspect a binary program image instead of registered kernels")
		outFile   = flag.String("o", "", "write the (single) selected program as a binary image")
	)
	sf := cliflags.RegisterSim(flag.CommandLine)
	flag.Parse()
	budget, warmup := sf.Sizes(100000, 0, 20000, 0)

	var infos []program.Info
	if *binFile != "" {
		f, err := os.Open(*binFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmtasm:", err)
			os.Exit(1)
		}
		name := strings.TrimSuffix(filepath.Base(*binFile), filepath.Ext(*binFile))
		p, err := isa.ReadImage(f, name)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmtasm:", err)
			os.Exit(1)
		}
		infos = []program.Info{{
			Name:        name,
			Suite:       "image",
			Description: "binary program image " + *binFile,
			Build:       func() *isa.Program { return p },
		}}
	} else {
		progs := cliflags.SplitProgs(*progsFlag)
		if len(progs) == 0 {
			fmt.Fprintln(os.Stderr, "rmtasm: no kernels given (-progs)")
			os.Exit(2)
		}
		infos = make([]program.Info, len(progs))
		for i, name := range progs {
			info, err := program.Get(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			infos[i] = info
		}
	}

	// Static verification gates everything: a malformed program produces
	// diagnostics on stderr and no listing, image or profile.
	if *check {
		bad := 0
		for _, info := range infos {
			for _, issue := range analysis.VerifyProgram(info.Build()) {
				fmt.Fprintf(os.Stderr, "rmtasm: %s: %s\n", info.Name, issue)
				bad++
			}
		}
		if bad > 0 {
			fmt.Fprintf(os.Stderr, "rmtasm: %d issue(s); refusing to emit output\n", bad)
			os.Exit(1)
		}
	}

	if *outFile != "" {
		if len(infos) != 1 {
			fmt.Fprintln(os.Stderr, "rmtasm: -o needs exactly one program")
			os.Exit(2)
		}
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmtasm:", err)
			os.Exit(1)
		}
		err = isa.WriteImage(f, infos[0].Build())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmtasm:", err)
			os.Exit(1)
		}
	}

	// Profiles are independent functional runs: compute them up front
	// across the worker pool, keyed by kernel index.
	var profiles []profileData
	if *profile {
		jobs := make([]func() (profileData, error), len(infos))
		for i := range infos {
			info := infos[i]
			jobs[i] = func() (profileData, error) {
				return runProfile(info, warmup, budget), nil
			}
		}
		var err error
		profiles, _, err = runner.Run(jobs, runner.Options{Parallelism: sf.Parallelism()})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	for i, info := range infos {
		if i > 0 {
			fmt.Println()
		}
		p := info.Build()
		fmt.Printf("%s (%s): %s\n", info.Name, info.Suite, info.Description)
		fmt.Printf("code: %d instructions, data image: %d bytes, interrupt handler: %d\n\n",
			len(p.Code), p.DataFootprint(), p.InterruptHandler)

		// Static mix.
		branches := 0
		for _, ins := range p.Code {
			if ins.IsBranch() {
				branches++
			}
		}
		fmt.Printf("static: %d branch sites (%.1f%% of code)\n\n",
			branches, 100*float64(branches)/float64(len(p.Code)))

		// Listing.
		for pc, ins := range p.Code {
			if *hex {
				fmt.Printf("%5d  %016x  %s\n", pc, uint64(isa.MustEncode(ins)), ins)
			} else {
				fmt.Printf("%5d  %s\n", pc, ins)
			}
		}

		if *profile {
			printProfile(profiles[i])
		}
	}
}

// runProfile functionally executes the kernel, skipping warmup
// instructions, then profiles budget instructions.
func runProfile(info program.Info, warmup, budget uint64) profileData {
	p := info.Build()
	memImg := vm.NewMemory()
	vm.Load(p, memImg)
	th := vm.NewThread(0, p, memImg)
	for i := uint64(0); i < warmup && !th.Halted; i++ {
		th.Step()
	}
	d := profileData{n: budget, counts: map[string]uint64{}}
	for i := uint64(0); i < budget && !th.Halted; i++ {
		out := th.Step()
		d.counts[out.Instr.Op.String()]++
		switch {
		case out.Instr.IsLoad():
			d.loads++
		case out.Instr.IsStore():
			d.stores++
		case out.Instr.IsBranch():
			d.brs++
			if out.Taken {
				d.taken++
			}
		}
	}
	return d
}

func printProfile(d profileData) {
	fmt.Printf("\ndynamic profile over %d instructions:\n", d.n)
	fmt.Printf("  loads %.1f%%  stores %.1f%%  branches %.1f%% (%.1f%% taken)\n",
		pct(d.loads, d.n), pct(d.stores, d.n), pct(d.brs, d.n), pct(d.taken, d.brs))
	type kv struct {
		op string
		n  uint64
	}
	var mix []kv
	for op, c := range d.counts {
		mix = append(mix, kv{op, c})
	}
	sort.Slice(mix, func(i, j int) bool {
		if mix[i].n != mix[j].n {
			return mix[i].n > mix[j].n
		}
		return mix[i].op < mix[j].op
	})
	for i, e := range mix {
		if i >= 12 {
			break
		}
		fmt.Printf("  %-8s %6.2f%%\n", e.op, pct(e.n, d.n))
	}
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
