// Command rmtasm inspects workload kernels: disassembly listings, static
// statistics, binary encodings, and a dynamic opcode/character profile from
// functional execution.
//
// Usage:
//
//	rmtasm -prog gcc            # disassembly + static stats
//	rmtasm -prog swim -profile  # add a 100k-instruction dynamic profile
//	rmtasm -prog li -hex        # include binary encodings
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/vm"
)

func main() {
	var (
		progName = flag.String("prog", "gcc", "kernel to inspect")
		profile  = flag.Bool("profile", false, "run 100k instructions and print a dynamic profile")
		hex      = flag.Bool("hex", false, "include binary encodings")
		n        = flag.Uint64("n", 100000, "instructions for -profile")
	)
	flag.Parse()

	info, err := program.Get(*progName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p := info.Build()

	fmt.Printf("%s (%s): %s\n", info.Name, info.Suite, info.Description)
	fmt.Printf("code: %d instructions, data image: %d bytes, interrupt handler: %d\n\n",
		len(p.Code), p.DataFootprint(), p.InterruptHandler)

	// Static mix.
	static := map[string]int{}
	branches := 0
	for _, ins := range p.Code {
		static[ins.Op.String()]++
		if ins.IsBranch() {
			branches++
		}
	}
	fmt.Printf("static: %d branch sites (%.1f%% of code)\n\n",
		branches, 100*float64(branches)/float64(len(p.Code)))

	// Listing.
	for pc, ins := range p.Code {
		if *hex {
			fmt.Printf("%5d  %016x  %s\n", pc, uint64(isa.MustEncode(ins)), ins)
		} else {
			fmt.Printf("%5d  %s\n", pc, ins)
		}
	}

	if !*profile {
		return
	}
	memImg := vm.NewMemory()
	vm.Load(p, memImg)
	th := vm.NewThread(0, p, memImg)
	counts := map[string]uint64{}
	var loads, stores, brs, taken uint64
	for i := uint64(0); i < *n && !th.Halted; i++ {
		out := th.Step()
		counts[out.Instr.Op.String()]++
		switch {
		case out.Instr.IsLoad():
			loads++
		case out.Instr.IsStore():
			stores++
		case out.Instr.IsBranch():
			brs++
			if out.Taken {
				taken++
			}
		}
	}
	fmt.Printf("\ndynamic profile over %d instructions:\n", *n)
	fmt.Printf("  loads %.1f%%  stores %.1f%%  branches %.1f%% (%.1f%% taken)\n",
		pct(loads, *n), pct(stores, *n), pct(brs, *n), pct(taken, brs))
	type kv struct {
		op string
		n  uint64
	}
	var mix []kv
	for op, c := range counts {
		mix = append(mix, kv{op, c})
	}
	sort.Slice(mix, func(i, j int) bool { return mix[i].n > mix[j].n })
	for i, e := range mix {
		if i >= 12 {
			break
		}
		fmt.Printf("  %-8s %6.2f%%\n", e.op, pct(e.n, *n))
	}
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
