// Command faultinject runs transient fault-injection campaigns against an
// RMT machine and reports detection coverage and latency, or injects one
// precisely-placed fault and narrates the outcome. Campaign trials are
// independent simulations, so -parallel shards them across workers; the
// fault plan is drawn from the seed up front and the report is identical
// at any parallelism.
//
// Usage:
//
//	faultinject -progs compress -n 50            # campaign on SRT
//	faultinject -mode crt -progs gcc,swim -n 20  # campaign on CRT
//	faultinject -mode srtr -progs gcc -n 50      # recovery campaign (SRTR)
//	faultinject -mode adaptive -theta 0.75 -n 50 # partial redundancy
//	faultinject -progs gcc -n 200 -parallel 8    # sharded campaign
//	faultinject -n 50 -server http://host:8471   # campaign on an rmtd daemon
//	faultinject -progs gcc -n 200 -prune         # skip statically-masked trials
//	faultinject -progs gcc -n 200 -validate-static  # replay them anyway, assert agreement
//	faultinject -one -seq 5000 -bit 7 -point storedata -target trailing
//
// Campaigns go through the rmt.Runner seam: in-process by default, or
// against a remote rmtd daemon with -server — same summary either way.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/fault"    //rmtlint:allow layering — single precisely-placed injections (-one) are not exposed via the facade
	"repro/internal/pipeline" //rmtlint:allow layering — per-run pipeline Config knobs for -one
	"repro/internal/sim"      //rmtlint:allow layering — builds the -one Spec the facade does not cover
	"repro/internal/vm"       //rmtlint:allow layering — names architectural corruption points for -point
	"repro/rmt"
)

func main() {
	var (
		modeFlag  = flag.String("mode", "srt", "machine: srt, crt, srtr or adaptive")
		progsFlag = flag.String("progs", "compress", "comma-separated workload kernels")
		n         = flag.Int("n", 40, "campaign size")
		seed      = flag.Uint64("seed", 0xC0FFEE, "campaign seed")
		theta     = flag.Float64("theta", 0.5, "adaptive-mode protection threshold θ in [0,1]")

		server = flag.String("server", "", "run the campaign on an rmtd daemon at this base URL instead of in-process")

		prune    = flag.Bool("prune", false, "classify statically-masked trials without replay (local engine only; summary unchanged)")
		validate = flag.Bool("validate-static", false, "replay pruned trials anyway and fail if the static masking proof disagrees")

		one    = flag.Bool("one", false, "inject a single described fault instead of a campaign")
		seq    = flag.Uint64("seq", 8000, "dynamic instruction number for -one")
		bit    = flag.Uint("bit", 0, "bit to flip for -one")
		point  = flag.String("point", "result", "corruption point for -one: result, storedata, storeaddr, loadvalue")
		target = flag.String("target", "leading", "copy to strike for -one: leading or trailing")
	)
	sf := cliflags.RegisterSim(flag.CommandLine)
	pf := cliflags.RegisterProf(flag.CommandLine)
	flag.Parse()
	stopProf, err := pf.Start()
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatal(err)
		}
	}()

	mode, err := cliflags.ParseMode(*modeFlag)
	if err != nil {
		fatal(fmt.Errorf("faultinject: %w", err))
	}
	switch mode {
	case sim.ModeSRT, sim.ModeCRT, sim.ModeSRTR, sim.ModeAdaptive:
	default:
		fatal(fmt.Errorf("faultinject: mode must be srt, crt, srtr or adaptive"))
	}
	budget, warmup := sf.Sizes(20000, 5000, 8000, 2000)
	spec := sim.Spec{
		Mode:     mode,
		Programs: cliflags.SplitProgs(*progsFlag),
		Budget:   budget,
		Warmup:   warmup,
		Config:   pipeline.DefaultConfig(),
		PSR:      true,
	}
	if mode == sim.ModeAdaptive {
		spec.AdaptiveThreshold = *theta
	}

	if *one {
		pt, err := parsePoint(*point)
		if err != nil {
			fatal(err)
		}
		tg := fault.LeadingCopy
		if *target == "trailing" {
			tg = fault.TrailingCopy
		}
		f := fault.Transient{Target: tg, AtSeq: *seq, Point: pt, Bit: *bit}
		res, err := fault.RunOne(spec, f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("injected %v\noutcome: %v\n", f, res.Outcome)
		if res.Outcome == fault.Detected {
			fmt.Printf("detection latency: %d cycles\n", res.DetectionCycles)
		}
		if res.Outcome == fault.Recovered {
			fmt.Printf("rollbacks: %d, re-executed cycles: %d\n", res.Recoveries, res.RecoveryCycles)
		}
		return
	}

	// Pruning is a local execution policy: it needs the fork engine and the
	// static analysis on this machine, and it reports how many trials were
	// skipped — information the daemon protocol deliberately does not carry
	// (the summary is identical either way).
	if *prune || *validate {
		if *server != "" {
			fatal(fmt.Errorf("faultinject: -prune/-validate-static are local execution policies; drop -server"))
		}
		var stats fault.PruneStats
		sum, err := fault.CampaignParallel(spec, *n, *seed, fault.CampaignOptions{
			Parallelism:           sf.Parallelism(),
			PruneStaticallyMasked: true,
			ValidateStaticMasking: *validate,
			PruneStats:            &stats,
			Progress: func(done, total int) {
				fmt.Fprintf(os.Stderr, "\rtrial %d/%d", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			},
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("campaign: mode=%v progs=%v trials=%d\n", mode, spec.Programs, sum.Runs)
		fmt.Printf("  detected:  %d\n  masked:    %d\n  not fired: %d\n", sum.Detected, sum.Masked, sum.NotFired)
		if sum.Recovered > 0 {
			fmt.Printf("  recovered: %d (mean re-execution %.0f cycles)\n", sum.Recovered, sum.MeanRecoveryCycles)
		}
		if sum.UnprotectedSDC > 0 {
			fmt.Printf("  unprotected SDC: %d\n", sum.UnprotectedSDC)
		}
		fmt.Printf("  coverage of fired faults: %.1f%%\n", 100*sum.Coverage())
		if sum.Detected > 0 {
			fmt.Printf("  mean detection latency:   %.0f cycles\n", sum.MeanDetectionCycles)
		}
		fmt.Printf("  statically pruned: %d of %d fired trials (%d planned)\n", stats.Pruned, stats.Fired, stats.Planned)
		if *validate {
			fmt.Println("  static masking cross-validation: every pruned trial replayed identically")
		}
		return
	}

	// Campaigns go through the Runner seam so -server swaps the backend
	// without touching the rest of this tool.
	var rn rmt.Runner = rmt.Local{}
	if *server != "" {
		rn = rmt.NewClient(*server)
	}
	rmtMode, err := rmt.ParseMode(*modeFlag)
	if err != nil {
		fatal(fmt.Errorf("faultinject: %w", err))
	}
	cs := rmt.CampaignSpec{
		Spec: rmt.Spec{Mode: rmtMode, Programs: spec.Programs, PSR: true,
			AdaptiveThreshold: spec.AdaptiveThreshold},
		N:    *n,
		Seed: *seed,
	}
	sum, err := rn.Campaign(context.Background(), cs,
		rmt.WithBudget(budget), rmt.WithWarmup(warmup),
		rmt.WithParallelism(sf.Parallelism()),
		rmt.WithProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rtrial %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("campaign: mode=%v progs=%v trials=%d\n", mode, spec.Programs, sum.Runs)
	fmt.Printf("  detected:  %d\n  masked:    %d\n  not fired: %d\n", sum.Detected, sum.Masked, sum.NotFired)
	if sum.Recovered > 0 {
		fmt.Printf("  recovered: %d (mean re-execution %.0f cycles)\n", sum.Recovered, sum.MeanRecoveryCycles)
	}
	if sum.UnprotectedSDC > 0 {
		fmt.Printf("  unprotected SDC: %d\n", sum.UnprotectedSDC)
	}
	fmt.Printf("  coverage of fired faults: %.1f%%\n", 100*sum.Coverage)
	if sum.Detected > 0 {
		fmt.Printf("  mean detection latency:   %.0f cycles\n", sum.MeanDetectionCycles)
	}
	fmt.Println("\nper-trial outcomes:")
	for i, o := range sum.Outcomes {
		fmt.Printf("  trial %d -> %s\n", i, o)
	}
}

func parsePoint(s string) (vm.CorruptPoint, error) {
	switch s {
	case "result":
		return vm.PointResult, nil
	case "storedata":
		return vm.PointStoreData, nil
	case "storeaddr":
		return vm.PointStoreAddr, nil
	case "loadvalue":
		return vm.PointLoadValue, nil
	}
	return 0, fmt.Errorf("faultinject: unknown corruption point %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
