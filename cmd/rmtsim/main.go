// Command rmtsim runs one workload on one machine configuration and prints
// detailed statistics: IPC, SMT-Efficiency against the base machine,
// prediction and cache rates, queue pressure, and RMT structure activity.
// The base-machine reference runs are independent, so -parallel fans them
// across workers.
//
// Usage:
//
//	rmtsim -mode srt -progs gcc                 # one redundant pair
//	rmtsim -mode crt -progs gcc,swim            # cross-coupled CMP
//	rmtsim -mode lockstep -checker 8 -progs gcc # Lock8
//	rmtsim -list                                # show the workload suite
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cliflags"
	"repro/internal/pipeline" //rmtlint:allow layering — per-run pipeline Config knobs, not yet exposed via the facade
	"repro/internal/program"  //rmtlint:allow layering — kernel descriptions for -list
	"repro/internal/sim"      //rmtlint:allow layering — single-run machine introspection beyond the facade Result
	"repro/internal/stats"    //rmtlint:allow layering — prints the full RunStats breakdown
	"repro/internal/trace"    //rmtlint:allow layering — cycle-trace writer is a debugging tool, not facade API
	"repro/rmt"
)

func main() {
	var (
		modeFlag  = flag.String("mode", "base", "machine: base, base2, srt, lockstep, crt")
		progsFlag = flag.String("progs", "gcc", "comma-separated workload kernels")
		ptsq      = flag.Bool("ptsq", false, "per-thread store queues")
		psr       = flag.Bool("psr", true, "preferential space redundancy")
		nosc      = flag.Bool("nosc", false, "disable store output comparison")
		checker   = flag.Uint64("checker", 8, "lockstep checker latency (cycles)")
		slack     = flag.Uint64("slack", 0, "slack-fetch instruction count (0 = LPQ priority)")
		list      = flag.Bool("list", false, "list the workload suite and exit")
		noRel     = flag.Bool("norel", false, "skip the base-machine reference runs")
		traceN    = flag.Int("trace", 0, "dump a pipeline trace of the first N retired instructions")
		metricsF  = flag.String("metrics", "", "write the end-of-run metrics snapshot (JSON) to this file")
		traceF    = flag.String("trace-json", "", "write the structured event trace (Chrome trace_event JSON, Perfetto-loadable) to this file")
	)
	sf := cliflags.RegisterSim(flag.CommandLine)
	pf := cliflags.RegisterProf(flag.CommandLine)
	flag.Parse()
	stopProf, err := pf.Start()
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatal(err)
		}
	}()

	if *list {
		for _, n := range program.Names() {
			info, _ := program.Get(n)
			fmt.Printf("%-10s %-4s %s\n", info.Name, info.Suite, info.Description)
		}
		return
	}

	mode, err := cliflags.ParseMode(*modeFlag)
	if err != nil {
		fatal(fmt.Errorf("rmtsim: %w", err))
	}
	budget, warmup := sf.Sizes(50000, 20000, 8000, 5000)
	progs := cliflags.SplitProgs(*progsFlag)

	spec := sim.Spec{
		Mode:              mode,
		Programs:          progs,
		Budget:            budget,
		Warmup:            warmup,
		Config:            pipeline.DefaultConfig(),
		PSR:               *psr,
		PerThreadSQ:       *ptsq,
		NoStoreComparison: *nosc,
		CheckerLatency:    *checker,
		SlackFetch:        *slack,
	}
	m, err := sim.Build(spec)
	if err != nil {
		fatal(err)
	}
	if *metricsF != "" {
		m.EnableMetrics()
	}
	var events *trace.EventLog
	if *traceF != "" {
		events = m.EnableTrace(0)
	}
	var collector *trace.Collector
	if *traceN > 0 {
		collector = trace.NewCollector(*traceN)
		hook := collector.Hook()
		if prev := m.Cores[0].Trace; prev != nil {
			m.Cores[0].Trace = func(ev pipeline.TraceEvent) { prev(ev); hook(ev) }
		} else {
			m.Cores[0].Trace = hook
		}
	}
	rs, err := m.Run()
	if err != nil {
		fatal(err)
	}
	if events != nil {
		if err := writeTo(*traceF, events.WriteChromeJSON); err != nil {
			fatal(err)
		}
	}
	if m.Metrics != nil {
		if err := writeTo(*metricsF, m.Metrics.Snapshot(rs.Cycles).WriteJSON); err != nil {
			fatal(err)
		}
	}
	if collector != nil {
		fmt.Println("pipeline trace (F fetch, D dispatch, I issue, C complete, X retire):")
		fmt.Print(trace.Format(collector.Records(), 0, 0))
		fmt.Println()
	}

	fmt.Printf("mode=%v programs=%v warmup=%d budget=%d cycles=%d\n\n", mode, progs, warmup, budget, rs.Cycles)

	var baseIPC map[string]float64
	if !*noRel {
		// The per-program reference runs are independent simulations;
		// fan them across the worker pool through the public facade.
		baseIPC, err = rmt.BaseIPC(context.Background(), progs,
			rmt.WithBudget(budget), rmt.WithWarmup(warmup),
			rmt.WithParallelism(sf.Parallelism()))
		if err != nil {
			fatal(err)
		}
	}

	tbl := &stats.Table{
		Title:   "per-logical-thread results",
		Columns: []string{"program", "IPC", "SMT-eff", "brMiss%", "lineMiss%", "I$miss", "D$miss", "sqStall", "storeLife"},
	}
	var effs []float64
	for i, name := range progs {
		lead := m.Leads[i]
		ts := lead.Stats
		eff := 0.0
		if baseIPC != nil && baseIPC[name] > 0 {
			eff = rs.LogicalIPC[i] / baseIPC[name]
			effs = append(effs, eff)
		}
		tbl.AddRow(name,
			fmt.Sprintf("%.3f", rs.LogicalIPC[i]),
			fmt.Sprintf("%.3f", eff),
			fmt.Sprintf("%.1f", 100*ts.BranchMispredictRate()),
			fmt.Sprintf("%.1f", 100*ts.LineMispredictRate()),
			fmt.Sprint(ts.ICacheMisses.Value()),
			fmt.Sprint(ts.DCacheMisses.Value()),
			fmt.Sprint(ts.SQFullStalls.Value()),
			fmt.Sprintf("%.1f", ts.StoreLifetime.Value()),
		)
	}
	fmt.Println(tbl)
	if len(effs) > 0 {
		fmt.Printf("mean SMT-Efficiency: %.3f\n", stats.ArithMean(effs))
	}

	for _, p := range m.Pairs {
		fmt.Printf("\npair %d (%s): comparisons=%d mismatches=%d lvqPushes=%d lvqWaits=%d lpqPushes=%d forcedTerms=%d sameHalf=%.4f sameFU=%.4f\n",
			p.LogicalID, progs[p.LogicalID],
			p.Cmp.Comparisons.Value(), p.Cmp.Mismatches.Value(),
			p.LVQ.Pushes.Value(), p.LVQ.Waits.Value(),
			p.LPQ.Pushes.Value(), p.Agg.ForcedTerminations.Value(),
			p.SameHalfFrac(), p.SameFUFrac())
	}

	for ci, co := range m.Cores {
		h := co.Hierarchy()
		fmt.Printf("\ncore %d caches: l1i miss %.3f%% (%d/%d)  l1d miss %.3f%%  l2 miss %.3f%%\n",
			ci,
			100*h.L1I.MissRate(), h.L1I.Misses.Value(), h.L1I.Hits.Value()+h.L1I.Misses.Value(),
			100*h.L1D.MissRate(), 100*h.L2.MissRate())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// writeTo creates path and streams write into it.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
