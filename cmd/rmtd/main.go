// Command rmtd is the result-serving daemon: a long-lived HTTP/JSON
// front end over the rmt facade. Identical experiments are canonicalised
// into a content-addressed key and computed once — repeats are served
// from an LRU cache, concurrent duplicates collapse onto one computation
// — and a bounded worker pool with queue-depth admission control sheds
// overload as 429 + Retry-After. SIGINT/SIGTERM drain in-flight requests
// before exit.
//
// Usage:
//
//	rmtd                             # serve on 127.0.0.1:8471
//	rmtd -addr :9000 -workers 8      # more workers, all interfaces
//	curl -s localhost:8471/healthz
//	curl -s -X POST localhost:8471/run -d '{"mode":"srt","programs":["gcc"]}'
//	curl -s localhost:8471/metricsz
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cliflags"
	"repro/internal/server" //rmtlint:allow layering — rmtd is the daemon entry point; the serving layer sits above the rmt facade and is not re-exported through it
)

func main() {
	sv := cliflags.RegisterServe(flag.CommandLine)
	flag.Parse()

	srv := server.New(server.Config{
		Workers:        sv.Workers,
		QueueDepth:     sv.Queue,
		CacheEntries:   sv.CacheEntries,
		SimParallelism: sv.SimParallel,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		errc <- srv.ListenAndServe(sv.Addr, func(addr net.Addr) {
			fmt.Printf("rmtd: listening on %s\n", addr)
		})
	}()

	select {
	case err := <-errc:
		// Listener failed before any signal (e.g. port in use).
		fmt.Fprintf(os.Stderr, "rmtd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "rmtd: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), sv.DrainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "rmtd: drain: %v\n", err)
		os.Exit(1)
	}
	<-errc // Serve returns http.ErrServerClosed after a clean drain
	fmt.Fprintln(os.Stderr, "rmtd: stopped")
}
