// Command progen emits generated workload kernels: seeded, deterministic
// random programs that pass the full static verifier by construction and
// halt within a declared dynamic-instruction bound. For each selected
// seed it can write the RMTBIN1 image (loadable by rmtasm -bin and any
// image consumer) and prints a characterisation profile — instruction
// mix, branch behaviour, memory footprint, miss-rate proxy, and an
// ILP estimate from a unit-latency dependence scoreboard — as a JSON
// array on stdout.
//
// Seeds are chosen either explicitly or as a corpus: -corpus draws n
// seeds from a master seed with the same splitmix64 expansion the test
// batteries use, so `progen -corpus 0xC0FFEE -n 32` reproduces exactly
// the corpus EXPERIMENTS.md tabulates.
//
//	progen -seeds 7,11                    # characterise two explicit seeds
//	progen -corpus 0xC0FFEE -n 32         # the documented 32-kernel corpus
//	progen -corpus 0xC0FFEE -n 4 -out dir # also write dir/gen_<seed>.rmtbin
//	progen -seeds 7 -verify               # re-run the static verifier too
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/analysis" //rmtlint:allow layering — optional re-verification of emitted kernels
	"repro/internal/isa"      //rmtlint:allow layering — serialises generated programs to RMTBIN1
	"repro/internal/progen"   //rmtlint:allow layering — the generator this command fronts
)

func main() {
	var (
		seedsFlag  = flag.String("seeds", "", "comma-separated explicit seeds (decimal or 0x hex)")
		corpusFlag = flag.String("corpus", "", "master seed: expand to -n kernel seeds via splitmix64")
		nFlag      = flag.Int("n", 32, "corpus size when -corpus is set")
		outDir     = flag.String("out", "", "directory to write one RMTBIN1 image per kernel (gen_<seed>.rmtbin)")
		verify     = flag.Bool("verify", false, "re-run the static verifier over each kernel (belt and braces: generation guarantees it)")
	)
	flag.Parse()

	seeds, err := selectSeeds(*seedsFlag, *corpusFlag, *nFlag)
	if err != nil {
		fatalf("%v", err)
	}
	if len(seeds) == 0 {
		fatalf("no seeds selected: pass -seeds or -corpus (see -help)")
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatalf("%v", err)
		}
	}

	profiles := make([]*progen.Profile, 0, len(seeds))
	for _, seed := range seeds {
		k := progen.Generate(seed)
		if *verify {
			if issues := analysis.VerifyProgram(k.Prog); len(issues) != 0 {
				fatalf("%s: %d verifier issues, first: %v", k.Prog.Name, len(issues), issues[0])
			}
		}
		p, err := progen.Characterize(k)
		if err != nil {
			fatalf("%s: %v", k.Prog.Name, err)
		}
		profiles = append(profiles, p)
		if *outDir != "" {
			path := filepath.Join(*outDir, fmt.Sprintf("gen_%d.rmtbin", seed))
			f, err := os.Create(path)
			if err != nil {
				fatalf("%v", err)
			}
			if err := isa.WriteImage(f, k.Prog); err != nil {
				fatalf("write %s: %v", path, err)
			}
			if err := f.Close(); err != nil {
				fatalf("close %s: %v", path, err)
			}
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(profiles); err != nil {
		fatalf("%v", err)
	}
}

// selectSeeds resolves the two seed-selection modes; they are mutually
// exclusive so a command line is always one reproducible description.
func selectSeeds(seedsFlag, corpusFlag string, n int) ([]uint64, error) {
	if seedsFlag != "" && corpusFlag != "" {
		return nil, fmt.Errorf("-seeds and -corpus are mutually exclusive")
	}
	if corpusFlag != "" {
		master, err := parseSeed(corpusFlag)
		if err != nil {
			return nil, fmt.Errorf("-corpus: %w", err)
		}
		if n <= 0 {
			return nil, fmt.Errorf("-n must be positive, got %d", n)
		}
		return progen.CorpusSeeds(master, n), nil
	}
	var seeds []uint64
	for _, s := range strings.Split(seedsFlag, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		seed, err := parseSeed(s)
		if err != nil {
			return nil, fmt.Errorf("-seeds: %w", err)
		}
		seeds = append(seeds, seed)
	}
	return seeds, nil
}

func parseSeed(s string) (uint64, error) {
	if rest, ok := strings.CutPrefix(s, "0x"); ok {
		return strconv.ParseUint(rest, 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "progen: "+format+"\n", args...)
	os.Exit(1)
}
