// Command benchjson folds `go test -bench` output into BENCH_4.json, the
// repository's recorded performance artifact. Each benchmark is stored
// twice — a "baseline" (pre-optimisation) and a "current" run — with the
// derived throughput rate alongside the raw numbers:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem . > bench.out
//	go run ./cmd/benchjson -o BENCH_4.json -role current bench.out
//
// The tool merges into an existing file, so the two roles can be recorded
// from different checkouts. When the input holds several runs of one
// benchmark (go test -count=N), the fastest is recorded. cycles_per_sec is simulated cycles per
// wall-clock second, computed from the "simcycles" metric the benchmarks
// report; a role that predates the metric borrows the other role's
// simcycles, which is sound because the optimisations the file exists to
// track are timing-invariant (the simulated machine executes the same
// cycle count either way).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Run is one recorded benchmark execution.
type Run struct {
	NsPerOp      float64            `json:"ns_per_op"`
	AllocsPerOp  float64            `json:"allocs_per_op"`
	BytesPerOp   float64            `json:"bytes_per_op"`
	CyclesPerSec float64            `json:"cycles_per_sec,omitempty"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
}

// Entry pairs the two roles and their headline ratio.
type Entry struct {
	Baseline *Run `json:"baseline,omitempty"`
	Current  *Run `json:"current,omitempty"`
	// Speedup is baseline ns/op over current ns/op (>1 = faster now).
	Speedup float64 `json:"speedup,omitempty"`
}

func parseBench(r io.Reader) (map[string]*Run, error) {
	runs := map[string]*Run{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		// Strip the -N GOMAXPROCS suffix go test appends to the name.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		run := &Run{Metrics: map[string]float64{}}
		// fields[1] is the iteration count; the rest are "value unit" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %s: bad value %q", name, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				run.NsPerOp = v
			case "allocs/op":
				run.AllocsPerOp = v
			case "B/op":
				run.BytesPerOp = v
			default:
				run.Metrics[unit] = v
			}
		}
		// Repeated lines for one benchmark (go test -count=N) keep the
		// fastest run: the minimum is the standard noise-robust estimator
		// for wall-clock benchmarks on shared machines.
		if prev := runs[name]; prev == nil || run.NsPerOp < prev.NsPerOp {
			runs[name] = run
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark lines found")
	}
	return runs, nil
}

// cyclesPerSec derives simulated-cycles-per-wall-second for run, borrowing
// the simcycles metric from other when run predates it.
func cyclesPerSec(run, other *Run) float64 {
	if run == nil || run.NsPerOp <= 0 {
		return 0
	}
	cycles, ok := run.Metrics["simcycles"]
	if !ok && other != nil {
		cycles, ok = other.Metrics["simcycles"]
	}
	if !ok || cycles <= 0 {
		return 0
	}
	return cycles / (run.NsPerOp * 1e-9)
}

func main() {
	out := flag.String("o", "BENCH_4.json", "output JSON file (merged in place)")
	role := flag.String("role", "current", `which role this run records: "baseline" or "current"`)
	flag.Parse()
	if *role != "baseline" && *role != "current" {
		fmt.Fprintf(os.Stderr, "benchjson: -role must be baseline or current, got %q\n", *role)
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	runs, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	entries := map[string]*Entry{}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &entries); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not valid: %v\n", *out, err)
			os.Exit(1)
		}
	}
	for name, run := range runs {
		e := entries[name]
		if e == nil {
			e = &Entry{}
			entries[name] = e
		}
		if *role == "baseline" {
			e.Baseline = run
		} else {
			e.Current = run
		}
	}
	for _, e := range entries {
		e.Baseline, e.Current = fill(e.Baseline, e.Current)
		if e.Baseline != nil && e.Current != nil && e.Current.NsPerOp > 0 {
			e.Speedup = e.Baseline.NsPerOp / e.Current.NsPerOp
		}
	}

	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: recorded %d benchmarks as %s in %s\n", len(runs), *role, *out)
}

// fill recomputes both roles' derived rates, each borrowing the other's
// simcycles when its own run predates the metric.
func fill(baseline, current *Run) (*Run, *Run) {
	if baseline != nil {
		baseline.CyclesPerSec = cyclesPerSec(baseline, current)
	}
	if current != nil {
		current.CyclesPerSec = cyclesPerSec(current, baseline)
	}
	return baseline, current
}
