// Command rmtbench regenerates the paper's evaluation: every table and
// figure in DESIGN.md's experiment index.
//
// Usage:
//
//	rmtbench                  # run everything at full size
//	rmtbench -exp fig6,fig11  # selected experiments
//	rmtbench -quick           # cut-down sizes (smoke)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/exp"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

type experiment struct {
	id   string
	desc string
	run  func(exp.Params) (*stats.Table, map[string]float64, error)
}

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiment ids (table1,fig6,...,fig12,coverage)")
		quick   = flag.Bool("quick", false, "use cut-down sizes")
		budget  = flag.Uint64("budget", 0, "override measured instructions per thread")
		warmup  = flag.Uint64("warmup", 0, "override warmup instructions")
		csvDir  = flag.String("csv", "", "also write each experiment's table as <dir>/<id>.csv")
	)
	flag.Parse()

	p := exp.Full()
	if *quick {
		p = exp.Quick()
	}
	if *budget > 0 {
		p.Budget = *budget
	}
	if *warmup > 0 {
		p.Warmup = *warmup
	}

	experiments := []experiment{
		{"fig6", "SRT single logical thread (Base2 / SRT / ptSQ / noSC)", exp.Fig6},
		{"fig7", "preferential space redundancy", exp.Fig7},
		{"fig8", "SRT with two logical threads", exp.Fig8},
		{"fig9", "store-queue lifetime and size sensitivity", exp.Fig9},
		{"fig10", "lockstep vs CRT, one logical thread", exp.Fig10},
		{"fig11", "lockstep vs CRT, two logical threads", exp.Fig11},
		{"fig12", "lockstep vs CRT, four logical threads", exp.Fig12},
		{"coverage", "fault-injection campaigns", exp.Coverage},
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]

	if all || want["table1"] {
		fmt.Println(exp.Table1(pipeline.DefaultConfig()))
	}
	for _, e := range experiments {
		if !all && !want[e.id] {
			continue
		}
		fmt.Printf("--- %s: %s (budget=%d warmup=%d) ---\n", e.id, e.desc, p.Budget, p.Warmup)
		tbl, summary, err := e.run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmtbench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(tbl)
		for _, k := range stats.SortedKeys(summary) {
			fmt.Printf("summary %s.%s = %.4f\n", e.id, k, summary[k])
		}
		fmt.Println()
		if *csvDir != "" {
			path := filepath.Join(*csvDir, e.id+".csv")
			if err := os.WriteFile(path, []byte(tbl.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "rmtbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
