// Command rmtbench regenerates the paper's evaluation: every table and
// figure in DESIGN.md's experiment index. Independent simulations are
// fanned across worker goroutines (-parallel); tables are assembled in
// declaration order, so stdout is byte-identical at any parallelism.
// Progress and timing go to stderr.
//
// Usage:
//
//	rmtbench                  # run everything at full size
//	rmtbench -exp fig6,fig11  # selected experiments
//	rmtbench -quick           # cut-down sizes (smoke)
//	rmtbench -parallel 1      # serial execution (same output)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/rmt"
)

// experimentJSON renders one experiment's results as a machine-readable
// artifact: the table plus the summary scalars. encoding/json sorts map
// keys, so the bytes are deterministic (and parallelism-independent, since
// tables are assembled in declaration order).
func experimentJSON(id string, budget, warmup uint64, tbl *rmt.Table, summary map[string]float64) []byte {
	doc := struct {
		ID      string             `json:"id"`
		Budget  uint64             `json:"budget"`
		Warmup  uint64             `json:"warmup"`
		Title   string             `json:"title"`
		Columns []string           `json:"columns"`
		Rows    [][]string         `json:"rows"`
		Summary map[string]float64 `json:"summary"`
	}{id, budget, warmup, tbl.Title(), tbl.Columns(), tbl.Rows(), summary}
	out, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		panic(err) // strings and floats only: cannot fail
	}
	return append(out, '\n')
}

func main() {
	var (
		expFlag    = flag.String("exp", "all", "comma-separated experiment ids (table1,fig6,...,fig12,coverage)")
		csvDir     = flag.String("csv", "", "also write each experiment's table as <dir>/<id>.csv")
		metricsDir = flag.String("metrics-dir", "", "also write each experiment's table and summary as <dir>/<id>.json")
	)
	sf := cliflags.RegisterSim(flag.CommandLine)
	pf := cliflags.RegisterProf(flag.CommandLine)
	flag.Parse()
	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmtbench: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "rmtbench: %v\n", err)
			os.Exit(1)
		}
	}()

	if *metricsDir != "" {
		if err := os.MkdirAll(*metricsDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "rmtbench: %v\n", err)
			os.Exit(1)
		}
	}

	base := []rmt.Option{rmt.WithParallelism(sf.Parallelism())}
	if sf.Quick {
		base = append(base, rmt.WithQuick())
	}
	if sf.Budget > 0 {
		base = append(base, rmt.WithBudget(sf.Budget))
	}
	if sf.Warmup > 0 {
		base = append(base, rmt.WithWarmup(sf.Warmup))
	}
	budget, warmup := rmt.ExperimentSizes(base...)

	known := map[string]bool{"all": true, "table1": true}
	for _, e := range rmt.Experiments() {
		known[e.ID] = true
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*expFlag, ",") {
		id = strings.TrimSpace(id)
		if !known[id] {
			ids := make([]string, 0, len(known))
			for k := range known {
				ids = append(ids, k)
			}
			sort.Strings(ids)
			fmt.Fprintf(os.Stderr, "rmtbench: unknown experiment %q (have %s)\n", id, strings.Join(ids, ", "))
			os.Exit(2)
		}
		want[id] = true
	}
	all := want["all"]

	if all || want["table1"] {
		fmt.Println(rmt.Table1())
	}
	for _, e := range rmt.Experiments() {
		if !all && !want[e.ID] {
			continue
		}
		fmt.Printf("--- %s: %s (budget=%d warmup=%d) ---\n", e.ID, e.Description, budget, warmup)

		// Progress and the parallel-speedup report are diagnostics: they
		// depend on wall-clock timing, so they go to stderr and stdout
		// stays byte-identical across -parallel values.
		var agg rmt.Report
		opts := append([]rmt.Option{}, base...)
		opts = append(opts,
			rmt.WithProgress(func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d simulations", e.ID, done, total)
			}),
			rmt.WithReport(func(r rmt.Report) {
				agg.Jobs += r.Jobs
				agg.Wall += r.Wall
				agg.Busy += r.Busy
				if r.Parallelism > agg.Parallelism {
					agg.Parallelism = r.Parallelism
				}
			}))
		start := time.Now() //rmtlint:allow determinism — stderr-only wall-clock reporting; stdout stays byte-identical
		tbl, summary, err := e.Run(opts...)
		if agg.Jobs > 0 {
			fmt.Fprintf(os.Stderr, "\r%s: %d simulations in %v (busy %v, speedup %.2fx, parallelism %d)\n",
				e.ID, agg.Jobs, time.Since(start).Round(time.Millisecond),
				agg.Busy.Round(time.Millisecond), agg.Speedup(), agg.Parallelism)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmtbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(tbl)
		keys := make([]string, 0, len(summary))
		for k := range summary {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("summary %s.%s = %.4f\n", e.ID, k, summary[k])
		}
		fmt.Println()
		if *csvDir != "" {
			path := filepath.Join(*csvDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(tbl.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "rmtbench: %v\n", err)
				os.Exit(1)
			}
		}
		if *metricsDir != "" {
			path := filepath.Join(*metricsDir, e.ID+".json")
			if err := os.WriteFile(path, experimentJSON(e.ID, budget, warmup, tbl, summary), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "rmtbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
