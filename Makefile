# Tier-1: must stay green.
verify:
	go build ./... && go test ./...

# Tier-2: the full suite under the race detector.
race:
	go test -race ./...

# Static analysis: go vet plus rmtlint (determinism/layering/shared-state/
# snapshot/snapshot-completeness analyzers and stale-directive detection
# over every package of the module — internal/, cmd/ and examples/ alike —
# then the program verifier over every registered kernel).
lint:
	go vet ./...
	go run ./cmd/rmtlint ./...

# Acceptance gate for the static ACE analysis: every statically-masked
# injection site must be dynamically confirmed Masked (randomized
# cross-validation over all kernels plus one targeted injection per site),
# and a pruned campaign must be byte-identical to the unpruned one.
crossval:
	go test ./internal/fault/ -run 'TestPrunedCampaignByteIdentical|TestStaticMaskingCrossValidation|TestStaticMaskedSitesExhaustive|TestGenPrunedCampaignByteIdentical|TestGenStaticMaskedSitesExhaustive' -count=1 -v

# Quick end-to-end check of the parallel sweep engine: regenerate the
# evaluation at cut-down sizes across 4 workers.
smoke:
	go run ./cmd/rmtbench -quick -parallel 4 >/dev/null

# The acceptance invariant: -parallel 1 and -parallel 4 stdout must be
# byte-identical. Outputs go to mktemp paths so concurrent CI runs cannot
# clobber each other.
determinism:
	@set -e; \
	p1=$$(mktemp); p4=$$(mktemp); trap 'rm -f $$p1 $$p4' EXIT; \
	go run ./cmd/rmtbench -quick -parallel 1 2>/dev/null > $$p1; \
	go run ./cmd/rmtbench -quick -parallel 4 2>/dev/null > $$p4; \
	cmp $$p1 $$p4 && echo "byte-identical"

# Coverage gate: total statement coverage must not fall below the floor.
# Re-pinned when the recovery/adaptive modes landed: the mode-matrix and
# recovery batteries lifted the measured total from the 72.0%-era figure
# to 74.9% (no-test cmd/ and examples/ packages still fold in at 0%); the
# floor leaves a small margin for flaky per-run variation.
COVER_FLOOR := 73.5
cover:
	@set -e; out=$$(mktemp); trap 'rm -f $$out' EXIT; \
	go test -count=1 -coverprofile=$$out ./...; \
	total=$$(go tool cover -func=$$out | tail -1 | awk '{gsub(/%/,"",$$NF); print $$NF}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) }' || \
	{ echo "FAIL: coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# Fuzz battery: bounded runs of every fuzz target. A crasher is persisted
# under the package's testdata/fuzz/ for replay as a regular test case.
FUZZTIME := 10s
fuzz:
	go test ./internal/isa/ -run '^$$' -fuzz FuzzLoadImage -fuzztime $(FUZZTIME)
	go test ./internal/server/ -run '^$$' -fuzz FuzzCanonicalKey -fuzztime $(FUZZTIME)
	go test ./internal/sim/ -run '^$$' -fuzz FuzzSnapshot -fuzztime $(FUZZTIME)
	go test ./internal/progen/ -run '^$$' -fuzz FuzzGenerate -fuzztime $(FUZZTIME)
	go test ./internal/vmdiff/ -race -run '^$$' -fuzz FuzzBatchStep -fuzztime $(FUZZTIME)

# Generator smoke tier for CI: the fixed-seed corpus properties (verifier
# cleanliness, halt-within-bound, determinism) as plain tests, plus a short
# FuzzGenerate run steering the coverage-guided fuzzer at the generator's
# whole seed domain.
fuzz-progen:
	go test ./internal/progen/ -count=1
	go test ./internal/progen/ -run '^$$' -fuzz FuzzGenerate -fuzztime 10s

# The generated-kernel differential battery: metamorphic state equality
# (base/SRT/CRT/4-context SMT), snapshot byte-identity and campaign
# determinism over the fixed 64-kernel corpus, under the race detector.
gen-battery:
	go test ./internal/sim/ ./internal/fault/ ./internal/server/ -run 'TestGen' -count=1 -race -timeout 20m

# Recovery/adaptive acceptance tier: the mode-matrix fault-coverage
# battery (masked-site gate plus targeted injections across every machine
# organisation), the SRTR recovery campaigns on the curated and generated
# corpora with parallelism-determinism checks, the adaptive
# partial-redundancy frontier, and the SRTR snapshot/rollback
# byte-identity and fault-free equivalence checks — all under the race
# detector, plus the recovery/adaptive figure shape tests.
recovery-battery:
	go test ./internal/fault/ -run 'TestModeMatrix|TestSRTR|TestAdaptive' -count=1 -race -timeout 20m
	go test ./internal/sim/ -run 'TestSRTR|TestAdaptive|TestGenMetamorphicSRTR|TestGenMetamorphicAdaptive' -count=1 -race -timeout 20m
	go test ./internal/exp/ -run 'TestFigRecoveryShape|TestFigAdaptiveShape' -count=1 -race

# End-to-end daemon smoke: start rmtd, wait for /healthz, POST the same
# /run twice and assert the second is served from the cache (X-Cache: hit),
# then SIGTERM and require a clean drain. Exercises the whole serving path
# (listener, admission, single-flight, cache, shutdown) outside httptest.
SMOKE_ADDR := 127.0.0.1:8471
serve-smoke:
	@set -e; \
	dir=$$(mktemp -d); \
	go build -o $$dir/rmtd ./cmd/rmtd; \
	$$dir/rmtd -addr $(SMOKE_ADDR) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null; rm -rf $$dir' EXIT; \
	for i in $$(seq 1 50); do \
		curl -fsS http://$(SMOKE_ADDR)/healthz >/dev/null 2>&1 && break; \
		sleep 0.1; \
	done; \
	curl -fsS http://$(SMOKE_ADDR)/healthz; \
	body='{"mode":"srt","programs":["compress"],"budget":2000,"warmup":800}'; \
	first=$$(curl -fsS -o $$dir/run1.json -D - -d "$$body" http://$(SMOKE_ADDR)/run | tr -d '\r' | awk 'tolower($$1)=="x-cache:"{print $$2}'); \
	second=$$(curl -fsS -o $$dir/run2.json -D - -d "$$body" http://$(SMOKE_ADDR)/run | tr -d '\r' | awk 'tolower($$1)=="x-cache:"{print $$2}'); \
	echo "first=$$first second=$$second"; \
	test "$$first" = miss; \
	test "$$second" = hit; \
	cmp $$dir/run1.json $$dir/run2.json; \
	kill -TERM $$pid; \
	wait $$pid; \
	trap - EXIT; \
	echo "serve-smoke: ok"

# Performance harness: run the benchmark battery with allocation accounting
# and fold the results into BENCH_4.json as the "current" role, next to the
# recorded pre-optimisation baseline (see EXPERIMENTS.md).
bench-json: bench-campaign
	@set -e; out=$$(mktemp); trap 'rm -f $$out' EXIT; \
	go test -run '^$$' -bench . -benchtime 1x -benchmem . | tee $$out; \
	go run ./cmd/benchjson -o BENCH_4.json -role current $$out

# Campaign-engine speedup artifact: the same campaign benchmark under the
# legacy per-trial engine (baseline) and the fork-on-fault engine (current),
# recorded as BENCH_5.json. The two runs report identical simcycles — the
# engines are byte-equivalent (TestForkMatchesLegacy) — so the ns/op ratio
# is pure engine speedup.
bench-campaign:
	@set -e; legacy=$$(mktemp); fork=$$(mktemp); trap 'rm -f $$legacy $$fork' EXIT; \
	RMT_CAMPAIGN_ENGINE=legacy go test -run '^$$' -bench BenchmarkCampaign_ForkOnFault -benchtime 3x . | tee $$legacy; \
	go run ./cmd/benchjson -o BENCH_5.json -role baseline $$legacy; \
	go test -run '^$$' -bench BenchmarkCampaign_ForkOnFault -benchtime 3x . | tee $$fork; \
	go run ./cmd/benchjson -o BENCH_5.json -role current $$fork

# Static-pruning speedup artifact: the same fork-on-fault campaign on
# kernels with statically-masked sites, without pruning (baseline) and with
# PruneStaticallyMasked (current), recorded as BENCH_6.json. The summaries
# are byte-identical (TestPrunedCampaignByteIdentical), so the ns/op ratio
# is the replay work the static ACE analysis saves.
bench-campaign-prune:
	@set -e; noprune=$$(mktemp); prune=$$(mktemp); trap 'rm -f $$noprune $$prune' EXIT; \
	go test -run '^$$' -bench BenchmarkCampaign_StaticPruning -benchtime 3x . | tee $$noprune; \
	go run ./cmd/benchjson -o BENCH_6.json -role baseline $$noprune; \
	RMT_CAMPAIGN_PRUNE=1 go test -run '^$$' -bench BenchmarkCampaign_StaticPruning -benchtime 3x . | tee $$prune; \
	go run ./cmd/benchjson -o BENCH_6.json -role current $$prune

# Batched-engine speedup artifact: the functional campaign-replay and
# corpus-verification benchmarks under scalar switch dispatch
# (baseline) and the batched SoA engine (current), recorded as
# BENCH_7.json. Both roles execute identical instruction streams — the
# engines are bit-equivalent (vm and vmdiff differential batteries), so
# identical simcycles and the ns/op ratio is pure dispatch speedup. Each
# role runs -count repetitions and benchjson keeps the fastest, which is
# the noise-robust estimator on shared machines.
bench-batch:
	@set -e; scalar=$$(mktemp); batch=$$(mktemp); trap 'rm -f $$scalar $$batch' EXIT; \
	RMT_VM_DISPATCH=switch go test -run '^$$' -bench 'BenchmarkFunctionalCampaignReplay|BenchmarkCorpusBatchReplay' -benchtime 10x -count 5 . | tee $$scalar; \
	go run ./cmd/benchjson -o BENCH_7.json -role baseline $$scalar; \
	go test -run '^$$' -bench 'BenchmarkFunctionalCampaignReplay|BenchmarkCorpusBatchReplay' -benchtime 10x -count 5 . | tee $$batch; \
	go run ./cmd/benchjson -o BENCH_7.json -role current $$batch

# CI-sized performance gate: every benchmark must still run (one iteration
# at -short sizes — this drives the batched campaign-replay and
# characterisation paths), a warm simulator must allocate nothing per
# cycle, and the batched hot loop must stay zero-alloc across pool reuse.
bench-smoke:
	go test -run '^$$' -bench . -benchtime 1x -short .
	go test ./internal/sim/ -run TestSteadyStateAllocs -count=1
	go test ./internal/vm/ -run 'TestBatchSteadyStateAllocs|TestBatchResetReuse' -count=1

.PHONY: verify race lint crossval smoke determinism cover fuzz fuzz-progen gen-battery recovery-battery bench-json bench-campaign bench-campaign-prune bench-batch bench-smoke serve-smoke
