# Tier-1: must stay green.
verify:
	go build ./... && go test ./...

# Tier-2: the full suite under the race detector.
race:
	go test -race ./...

# Static analysis: go vet plus rmtlint (determinism/layering/shared-state
# analyzers over the Go sources, then the program verifier over every
# registered kernel).
lint:
	go vet ./...
	go run ./cmd/rmtlint ./...

# Quick end-to-end check of the parallel sweep engine: regenerate the
# evaluation at cut-down sizes across 4 workers.
smoke:
	go run ./cmd/rmtbench -quick -parallel 4 >/dev/null

# The acceptance invariant: -parallel 1 and -parallel 4 stdout must be
# byte-identical.
determinism:
	go run ./cmd/rmtbench -quick -parallel 1 2>/dev/null > /tmp/rmtbench.p1.out
	go run ./cmd/rmtbench -quick -parallel 4 2>/dev/null > /tmp/rmtbench.p4.out
	cmp /tmp/rmtbench.p1.out /tmp/rmtbench.p4.out && echo "byte-identical"

# Coverage gate: total statement coverage must not fall below the floor
# recorded when the observability layer landed (80.1% at the time; the
# floor leaves a small margin for flaky per-run variation).
COVER_FLOOR := 78.0
cover:
	go test -count=1 -coverprofile=/tmp/rmt.cover.out ./...
	@total=$$(go tool cover -func=/tmp/rmt.cover.out | tail -1 | awk '{gsub(/%/,"",$$NF); print $$NF}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) }' || \
	{ echo "FAIL: coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# Fuzz battery: bounded runs of every fuzz target. A crasher is persisted
# under the package's testdata/fuzz/ for replay as a regular test case.
FUZZTIME := 10s
fuzz:
	go test ./internal/isa/ -run '^$$' -fuzz FuzzLoadImage -fuzztime $(FUZZTIME)

# Performance harness: run the benchmark battery with allocation accounting
# and fold the results into BENCH_4.json as the "current" role, next to the
# recorded pre-optimisation baseline (see EXPERIMENTS.md).
bench-json:
	go test -run '^$$' -bench . -benchtime 1x -benchmem . | tee /tmp/rmt.bench.out
	go run ./cmd/benchjson -o BENCH_4.json -role current /tmp/rmt.bench.out

# CI-sized performance gate: every benchmark must still run (one iteration
# at -short sizes), and a warm simulator must allocate nothing per cycle.
bench-smoke:
	go test -run '^$$' -bench . -benchtime 1x -short .
	go test ./internal/sim/ -run TestSteadyStateAllocs -count=1

.PHONY: verify race lint smoke determinism cover fuzz bench-json bench-smoke
