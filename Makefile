# Tier-1: must stay green.
verify:
	go build ./... && go test ./...

# Tier-2: the full suite under the race detector.
race:
	go test -race ./...

# Static analysis: go vet plus rmtlint (determinism/layering/shared-state
# analyzers over the Go sources, then the program verifier over every
# registered kernel).
lint:
	go vet ./...
	go run ./cmd/rmtlint ./...

# Quick end-to-end check of the parallel sweep engine: regenerate the
# evaluation at cut-down sizes across 4 workers.
smoke:
	go run ./cmd/rmtbench -quick -parallel 4 >/dev/null

# The acceptance invariant: -parallel 1 and -parallel 4 stdout must be
# byte-identical.
determinism:
	go run ./cmd/rmtbench -quick -parallel 1 2>/dev/null > /tmp/rmtbench.p1.out
	go run ./cmd/rmtbench -quick -parallel 4 2>/dev/null > /tmp/rmtbench.p4.out
	cmp /tmp/rmtbench.p1.out /tmp/rmtbench.p4.out && echo "byte-identical"

.PHONY: verify race lint smoke determinism
