// Permanent-fault coverage and preferential space redundancy (§4.5).
//
// Time redundancy (the same hardware used twice, at different times) cannot
// catch a permanent fault: both copies compute the same wrong answer. Space
// redundancy (physically distinct hardware) can. An SRT processor gets
// whichever the scheduler happens to give it — unless it is *biased*.
//
// This example measures, with and without preferential space redundancy,
// how often the two copies of an instruction land on the same issue-queue
// half and same functional unit — i.e., how exposed the machine is to a
// stuck-at fault in one unit — and shows the bias costs nothing.
//
//	go run ./examples/coverage
package main

import (
	"fmt"
	"log"

	"repro/internal/pipeline" //rmtlint:allow layering — example demonstrates internal machine construction
	"repro/internal/sim"      //rmtlint:allow layering — example demonstrates internal machine construction
)

func main() {
	const budget, warmup = 30000, 20000
	workloads := []string{"gcc", "compress", "swim", "fpppp"}

	fmt.Println("fraction of corresponding instruction pairs using the SAME hardware")
	fmt.Println("(a permanent fault there corrupts both copies identically = undetectable)")
	fmt.Println()
	fmt.Printf("%-10s %14s %14s %14s %14s\n", "workload",
		"half, no PSR", "unit, no PSR", "half, PSR", "unit, PSR")

	for _, w := range workloads {
		var frac [2][2]float64 // [psr][half|fu]
		var ipc [2]float64
		for i, psr := range []bool{false, true} {
			m, err := sim.Build(sim.Spec{
				Mode:     sim.ModeSRT,
				Programs: []string{w},
				Budget:   budget,
				Warmup:   warmup,
				Config:   pipeline.DefaultConfig(),
				PSR:      psr,
			})
			if err != nil {
				log.Fatal(err)
			}
			rs, err := m.Run()
			if err != nil {
				log.Fatal(err)
			}
			frac[i][0] = m.Pairs[0].SameHalfFrac()
			frac[i][1] = m.Pairs[0].SameFUFrac()
			ipc[i] = rs.LogicalIPC[0]
		}
		fmt.Printf("%-10s %13.1f%% %13.1f%% %13.2f%% %13.2f%%   (IPC %.3f -> %.3f)\n",
			w, 100*frac[0][0], 100*frac[0][1], 100*frac[1][0], 100*frac[1][1],
			ipc[0], ipc[1])
	}

	fmt.Println()
	fmt.Println("with PSR, corresponding instructions are steered to OPPOSITE halves of")
	fmt.Println("the instruction queue, so a permanent fault in one half/unit corrupts at")
	fmt.Println("most one copy and the store comparator catches the disagreement.")
	fmt.Println("the paper measures 65% same-unit without PSR, 0.06% with, at no cost;")
	fmt.Println("the IPC columns above confirm the bias is performance-neutral here too.")
}
