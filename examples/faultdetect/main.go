// Fault detection demo: strike one copy of a redundant pair with a
// single-bit transient fault — a simulated cosmic-ray hit — and watch the
// sphere-of-replication boundary catch the divergence.
//
// The demo injects three faults of increasing subtlety:
//
//  1. a flipped store-data bit (caught directly by the store comparator),
//  2. a flipped loaded value (propagates through dependent computation
//     before a downstream store differs),
//  3. a flipped high bit that the program masks off (architecturally
//     benign: correctly NOT reported — no false alarms, no wasted
//     recoveries).
//
// go run ./examples/faultdetect
package main

import (
	"fmt"
	"log"

	"repro/internal/fault"    //rmtlint:allow layering — example demonstrates the internal fault-injection hooks
	"repro/internal/pipeline" //rmtlint:allow layering — example demonstrates internal machine construction
	"repro/internal/sim"      //rmtlint:allow layering — example demonstrates internal machine construction
	"repro/internal/vm"       //rmtlint:allow layering — names the corruption point being injected
)

func main() {
	spec := sim.Spec{
		Mode:     sim.ModeSRT,
		Programs: []string{"compress"},
		Budget:   20000,
		Warmup:   5000,
		Config:   pipeline.DefaultConfig(),
		PSR:      true,
	}

	demos := []struct {
		what string
		f    fault.Transient
	}{
		{
			"flip bit 5 of a store's data in the trailing copy",
			fault.Transient{Target: fault.TrailingCopy, AtSeq: 9000, Point: vm.PointStoreData, Bit: 5},
		},
		{
			"flip bit 0 of a loaded value in the leading copy",
			fault.Transient{Target: fault.LeadingCopy, AtSeq: 9000, Point: vm.PointLoadValue, Bit: 0},
		},
		{
			"flip bit 62 of an ALU result the program masks away",
			fault.Transient{Target: fault.LeadingCopy, AtSeq: 9001, Point: vm.PointResult, Bit: 62},
		},
	}

	for i, d := range demos {
		fmt.Printf("%d. %s\n", i+1, d.what)
		res, err := fault.RunOne(spec, d.f)
		if err != nil {
			log.Fatal(err)
		}
		switch res.Outcome {
		case fault.Detected:
			fmt.Printf("   -> DETECTED after %d cycles: the output comparator flagged the mismatch\n\n",
				res.DetectionCycles)
		case fault.Masked:
			fmt.Printf("   -> masked: the corrupted bit never reached an output (benign fault)\n\n")
		case fault.NotFired:
			fmt.Printf("   -> the injection point was never reached\n\n")
		}
	}

	// Finish with a small random campaign to show aggregate coverage.
	fmt.Println("random campaign (30 single-bit transients):")
	sum, err := fault.Campaign(spec, 30, 0xDECAF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  detected %d, masked %d, not fired %d\n", sum.Detected, sum.Masked, sum.NotFired)
	fmt.Printf("  coverage of fired faults: %.0f%%\n", 100*sum.Coverage())
	fmt.Printf("  mean detection latency:   %.0f cycles\n", sum.MeanDetectionCycles)
	fmt.Println("\nno fault ever escaped silently: every store leaves the sphere only after comparison.")
}
