// CRT vs lockstepping on a two-program workload — the paper's second
// contribution, driven through the public rmt package. A two-way CMP can
// detect faults either by lockstepping its cores (identical computation
// every cycle, checker on every output signal) or by chip-level redundant
// threading: leading and trailing copies on different cores, cross-coupled
// so that each core runs one program's resource-hungry leading thread next
// to the *other* program's cheap trailing thread.
//
// The four protected configurations are independent simulations, so they
// are submitted as one rmt.Sweep and fan across worker goroutines; results
// come back in input order.
//
//	go run ./examples/crtpair
package main

import (
	"context"
	"fmt"
	"log"

	"repro/rmt"
)

func main() {
	progs := []string{"gcc", "swim"}
	opts := []rmt.Option{rmt.WithBudget(30000), rmt.WithWarmup(30000)}

	// Single-thread base IPCs: the SMT-Efficiency denominators.
	ctx := context.Background()
	baseIPC, err := rmt.BaseIPC(ctx, progs, opts...)
	if err != nil {
		log.Fatal(err)
	}

	specs := []rmt.Spec{
		{Mode: rmt.Lockstep, CheckerLatency: 8, Programs: progs}, // Lock8: realistic checker
		{Mode: rmt.Lockstep, CheckerLatency: 0, Programs: progs}, // Lock0: ideal checker
		{Mode: rmt.CRT, PSR: true, Programs: progs},
		{Mode: rmt.CRT, PSR: true, PerThreadSQ: true, Programs: progs},
	}
	results, err := rmt.Sweep(ctx, specs, opts...)
	if err != nil {
		log.Fatal(err)
	}

	// SMT-Efficiency: mean over programs of IPC / single-thread base IPC.
	eff := func(r *rmt.Result) float64 {
		var sum float64
		for i, p := range progs {
			sum += r.IPC[i] / baseIPC[p]
		}
		return sum / float64(len(progs))
	}

	fmt.Printf("workload: %v, both fully protected against transient faults\n\n", progs)

	fmt.Println("1. lockstepped cores (Lock8: realistic 8-cycle checker):")
	fmt.Printf("   SMT-Efficiency: %.3f\n\n", eff(results[0]))

	fmt.Println("2. lockstepped cores (Lock0: ideal zero-latency checker):")
	fmt.Printf("   SMT-Efficiency: %.3f\n\n", eff(results[1]))

	fmt.Println("3. chip-level redundant threading (CRT), cross-coupled:")
	for i, c := range results[2].Checks {
		fmt.Printf("   pair %d (%s): leading on core %d, trailing on core %d\n",
			i, progs[i], c.LeadCore, c.TrailCore)
	}
	crt := eff(results[2])
	fmt.Printf("   SMT-Efficiency: %.3f\n\n", crt)

	fmt.Println("4. CRT with per-thread store queues:")
	fmt.Printf("   SMT-Efficiency: %.3f\n\n", eff(results[3]))

	lock8 := eff(results[0])
	fmt.Printf("CRT outperforms the realistic lockstep machine by %.0f%%\n",
		100*(crt/lock8-1))
	fmt.Println("(the paper reports 13% on average, up to 22%, for such workloads)")
}
