// CRT vs lockstepping on a two-program workload — the paper's second
// contribution. A two-way CMP can detect faults either by lockstepping its
// cores (identical computation every cycle, checker on every output signal)
// or by chip-level redundant threading: leading and trailing copies on
// different cores, cross-coupled so that each core runs one program's
// resource-hungry leading thread next to the *other* program's cheap
// trailing thread.
//
//	go run ./examples/crtpair
package main

import (
	"fmt"
	"log"

	"repro/internal/pipeline"
	"repro/internal/sim"
)

func main() {
	progs := []string{"gcc", "swim"}
	const budget, warmup = 30000, 30000

	baseIPC, err := sim.BaseIPC(pipeline.DefaultConfig(), warmup, budget, progs...)
	if err != nil {
		log.Fatal(err)
	}

	runMode := func(spec sim.Spec) float64 {
		spec.Programs = progs
		spec.Budget = budget
		spec.Warmup = warmup
		spec.Config = pipeline.DefaultConfig()
		m, err := sim.Build(spec)
		if err != nil {
			log.Fatal(err)
		}
		rs, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		// SMT-Efficiency: mean over programs of IPC / single-thread base IPC.
		var sum float64
		for i, p := range progs {
			sum += rs.LogicalIPC[i] / baseIPC[p]
		}
		if spec.Mode == sim.ModeCRT {
			for _, p := range m.Pairs {
				fmt.Printf("   pair %d (%s): leading on core %d, trailing on core %d\n",
					p.LogicalID, progs[p.LogicalID], p.LeadCore, p.TrailCore)
			}
		}
		return sum / float64(len(progs))
	}

	fmt.Printf("workload: %v, both fully protected against transient faults\n\n", progs)

	fmt.Println("1. lockstepped cores (Lock8: realistic 8-cycle checker):")
	lock8 := runMode(sim.Spec{Mode: sim.ModeLockstep, CheckerLatency: 8})
	fmt.Printf("   SMT-Efficiency: %.3f\n\n", lock8)

	fmt.Println("2. lockstepped cores (Lock0: ideal zero-latency checker):")
	lock0 := runMode(sim.Spec{Mode: sim.ModeLockstep, CheckerLatency: 0})
	fmt.Printf("   SMT-Efficiency: %.3f\n\n", lock0)

	fmt.Println("3. chip-level redundant threading (CRT), cross-coupled:")
	crt := runMode(sim.Spec{Mode: sim.ModeCRT, PSR: true})
	fmt.Printf("   SMT-Efficiency: %.3f\n\n", crt)

	fmt.Println("4. CRT with per-thread store queues:")
	crtP := runMode(sim.Spec{Mode: sim.ModeCRT, PSR: true, PerThreadSQ: true})
	fmt.Printf("   SMT-Efficiency: %.3f\n\n", crtP)

	fmt.Printf("CRT outperforms the realistic lockstep machine by %.0f%%\n",
		100*(crt/lock8-1))
	fmt.Println("(the paper reports 13% on average, up to 22%, for such workloads)")
}
