// Quickstart: build one machine, run one workload, read the results.
//
// This example runs the "gcc" kernel twice — once on the unprotected base
// SMT processor and once as a redundant SRT pair — and prints the cost of
// fault detection: the paper's central single-thread measurement.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/pipeline"
	"repro/internal/sim"
)

func main() {
	const (
		workload = "gcc"
		budget   = 30000 // measured instructions
		warmup   = 20000 // cache/predictor warmup instructions
	)

	// 1. The base machine: one hardware thread, no protection.
	base, err := sim.Build(sim.Spec{
		Mode:     sim.ModeBase,
		Programs: []string{workload},
		Budget:   budget,
		Warmup:   warmup,
		Config:   pipeline.DefaultConfig(),
	})
	if err != nil {
		log.Fatal(err)
	}
	baseStats, err := base.Run()
	if err != nil {
		log.Fatal(err)
	}

	// 2. The same program as a redundant pair on one SMT core (SRT):
	// leading + trailing hardware threads, inputs replicated through the
	// load value queue, outputs compared at the store comparator.
	srt, err := sim.Build(sim.Spec{
		Mode:     sim.ModeSRT,
		Programs: []string{workload},
		Budget:   budget,
		Warmup:   warmup,
		Config:   pipeline.DefaultConfig(),
		PSR:      true, // preferential space redundancy (§4.5)
	})
	if err != nil {
		log.Fatal(err)
	}
	srtStats, err := srt.Run()
	if err != nil {
		log.Fatal(err)
	}

	baseIPC := baseStats.LogicalIPC[0]
	srtIPC := srtStats.LogicalIPC[0]
	pair := srt.Pairs[0]

	fmt.Printf("workload: %s (%d instructions measured after %d warmup)\n\n",
		workload, budget, warmup)
	fmt.Printf("base machine IPC:   %.3f  (%d cycles)\n", baseIPC, baseStats.Cycles)
	fmt.Printf("SRT machine IPC:    %.3f  (%d cycles)\n", srtIPC, srtStats.Cycles)
	fmt.Printf("SMT-Efficiency:     %.3f  (1.0 = free fault detection)\n\n", srtIPC/baseIPC)

	fmt.Printf("every output was checked before leaving the sphere of replication:\n")
	fmt.Printf("  stores compared:   %d (mismatches: %d)\n",
		pair.Cmp.Comparisons.Value(), pair.Cmp.Mismatches.Value())
	fmt.Printf("  loads replicated:  %d through the load value queue\n",
		pair.LVQ.Pushes.Value())
	fmt.Printf("  fetch chunks sent: %d through the line prediction queue\n",
		pair.LPQ.Pushes.Value())
	fmt.Printf("  leading store-queue lifetime: %.1f cycles (base: %.1f)\n",
		srt.Leads[0].Stats.StoreLifetime.Value(),
		base.Leads[0].Stats.StoreLifetime.Value())
}
