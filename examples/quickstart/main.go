// Quickstart: build one machine, run one workload, read the results —
// entirely through the public rmt package.
//
// This example runs the "gcc" kernel twice — once on the unprotected base
// SMT processor and once as a redundant SRT pair — and prints the cost of
// fault detection: the paper's central single-thread measurement.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/rmt"
)

func main() {
	const (
		workload = "gcc"
		budget   = 30000 // measured instructions
		warmup   = 20000 // cache/predictor warmup instructions
	)
	opts := []rmt.Option{rmt.WithBudget(budget), rmt.WithWarmup(warmup)}

	// 1. The base machine: one hardware thread, no protection.
	ctx := context.Background()
	base, err := rmt.Run(ctx, rmt.Spec{
		Mode:     rmt.Base,
		Programs: []string{workload},
	}, opts...)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The same program as a redundant pair on one SMT core (SRT):
	// leading + trailing hardware threads, inputs replicated through the
	// load value queue, outputs compared at the store comparator.
	srt, err := rmt.Run(ctx, rmt.Spec{
		Mode:     rmt.SRT,
		Programs: []string{workload},
		PSR:      true, // preferential space redundancy (§4.5)
	}, opts...)
	if err != nil {
		log.Fatal(err)
	}

	baseIPC := base.IPC[0]
	srtIPC := srt.IPC[0]
	checks := srt.Checks[0]

	fmt.Printf("workload: %s (%d instructions measured after %d warmup)\n\n",
		workload, budget, warmup)
	fmt.Printf("base machine IPC:   %.3f  (%d cycles)\n", baseIPC, base.Cycles)
	fmt.Printf("SRT machine IPC:    %.3f  (%d cycles)\n", srtIPC, srt.Cycles)
	fmt.Printf("SMT-Efficiency:     %.3f  (1.0 = free fault detection)\n\n", srtIPC/baseIPC)

	fmt.Printf("every output was checked before leaving the sphere of replication:\n")
	fmt.Printf("  stores compared:   %d (mismatches: %d)\n",
		checks.StoresCompared, checks.StoreMismatches)
	fmt.Printf("  loads replicated:  %d through the load value queue\n",
		checks.LoadsReplicated)
	fmt.Printf("  fetch chunks sent: %d through the line prediction queue\n",
		checks.FetchChunksSent)
	fmt.Printf("  leading store-queue lifetime: %.1f cycles (base: %.1f)\n",
		srt.StoreLifetime[0], base.StoreLifetime[0])
}
